package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"topomap/internal/cache"
	"topomap/internal/core"
	"topomap/internal/graph"
	"topomap/internal/remap"
)

// TestPoolRemapIncremental: a delta against a cached base is served by the
// structural patch — bit-equal to a from-scratch engine run of the mutated
// network — and the post-delta entry becomes a first-class cache citizen
// that Lookup and chained Remaps hit.
func TestPoolRemapIncremental(t *testing.T) {
	p := cachedPool(1)
	defer p.Close()
	ctx := context.Background()

	g := graph.Ring(32)
	j, err := p.Submit(ctx, g, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	base := g.CanonicalDigest(0)
	prevTopo := j.Cached().Res.Topology

	// A label-stable chord in reconstruction space (to < from, free ports).
	d := new(graph.Delta).Insert(20, 2, 5, 2)
	out, err := p.Remap(ctx, base, d, remap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != RemapIncremental {
		t.Fatalf("kind %v, want incremental", out.Kind)
	}
	// Patch-produced entries carry no protocol counters; the Remapped flag
	// is what tells a later cache hit apart from a real run.
	if !out.Ent.Remapped {
		t.Fatal("patch-produced entry not marked Remapped")
	}
	if j.Cached().Remapped {
		t.Fatal("engine-produced entry marked Remapped")
	}

	// Reference: an uncached engine run of the mutated network.
	mutated, err := d.ApplyClone(prevTopo)
	if err != nil {
		t.Fatal(err)
	}
	root := 0
	rj, err := p.Submit(ctx, mutated, JobOptions{Root: &root, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := await(t, rj)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ent.Res.Topology.Equal(want.Topology) {
		t.Fatal("patched entry != full engine map of the mutated network")
	}
	if out.Digest != mutated.CanonicalDigest(0) {
		t.Fatal("outcome digest is not the post-delta content address")
	}

	// The patched entry is resident under the post-delta address.
	if ent := p.Lookup(mutated, 0); ent != out.Ent {
		t.Fatal("post-delta lookup does not hit the patched entry")
	}

	// Chaining: remap again from the post-delta digest.
	d2 := new(graph.Delta).Insert(25, 2, 9, 2)
	out2, err := p.Remap(ctx, out.Digest, d2, remap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Kind != RemapIncremental {
		t.Fatalf("chained kind %v, want incremental", out2.Kind)
	}
	m2, err := d2.ApplyClone(out.Ent.Res.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Digest != m2.CanonicalDigest(0) {
		t.Fatal("chained remap digest mismatch")
	}

	if s := p.Stats(); s.RemapIncremental != 2 {
		t.Fatalf("RemapIncremental = %d, want 2", s.RemapIncremental)
	}
}

// TestPoolRemapFallback: a delta that dirties every label exceeds the
// default threshold, so the remap rides the full-protocol path — counted as
// RemapFull and indistinguishable in result bits.
func TestPoolRemapFallback(t *testing.T) {
	p := cachedPool(1)
	defer p.Close()
	ctx := context.Background()

	g := graph.Ring(32)
	j, err := p.Submit(ctx, g, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	prevTopo := j.Cached().Res.Topology

	// Rewiring the root's tree edge to a different in-port dirties the whole
	// suffix (tree-edge delete → t* = 1) and changes the network.
	d := new(graph.Delta).Delete(0, 1, 1, 1).Insert(0, 1, 1, 2)
	out, err := p.Remap(ctx, g.CanonicalDigest(0), d, remap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != RemapFull {
		t.Fatalf("kind %v, want full", out.Kind)
	}
	if out.Ent.Remapped {
		t.Fatal("fallback entry came from a real run; must not be marked Remapped")
	}
	if out.Dirty != prevTopo.N() {
		t.Fatalf("fallback dirty %d, want %d", out.Dirty, prevTopo.N())
	}
	mutated, err := d.ApplyClone(prevTopo)
	if err != nil {
		t.Fatal(err)
	}
	root := 0
	rj, err := p.Submit(ctx, mutated, JobOptions{Root: &root, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := await(t, rj)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ent.Res.Topology.Equal(want.Topology) {
		t.Fatal("fallback result != full engine map of the mutated network")
	}
	if out.Digest != mutated.CanonicalDigest(0) {
		t.Fatal("fallback digest is not the post-delta content address")
	}
	s := p.Stats()
	if s.RemapFull != 1 {
		t.Fatalf("RemapFull = %d, want 1", s.RemapFull)
	}
	if s.Served < 2 {
		t.Fatalf("fallback did not ride the engine path (Served = %d)", s.Served)
	}

	// MaxDirtyFrac 1 disables the fallback: same delta patches structurally.
	out2, err := p.Remap(ctx, g.CanonicalDigest(0), d, remap.Options{MaxDirtyFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Kind != RemapIncremental {
		t.Fatalf("threshold-disabled kind %v, want incremental", out2.Kind)
	}
	if out2.Digest != out.Digest {
		t.Fatal("structural and fallback remaps disagree on the content address")
	}
}

// TestPoolRemapErrors: unknown bases, cache-less pools, and model-breaking
// deltas are clean failures with the right counters.
func TestPoolRemapErrors(t *testing.T) {
	bare := New(Options{Size: 1, Run: core.Options{Workers: 1}})
	defer bare.Close()
	d := new(graph.Delta).Insert(1, 2, 0, 2)
	if _, err := bare.Remap(context.Background(), graph.Digest{}, d, remap.Options{}); !errors.Is(err, ErrNoCache) {
		t.Fatalf("cache-less remap: %v, want ErrNoCache", err)
	}

	p := cachedPool(1)
	defer p.Close()
	if _, err := p.Remap(context.Background(), graph.Digest{0xAB}, d, remap.Options{}); !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("unknown base: %v, want ErrUnknownBase", err)
	}
	if s := p.Stats(); s.RemapBaseMisses != 1 {
		t.Fatalf("RemapBaseMisses = %d, want 1", s.RemapBaseMisses)
	}

	g := graph.Ring(16)
	j, err := p.Submit(context.Background(), g, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	// Deleting a ring edge disconnects the cycle: the SC guard must reject.
	bad := new(graph.Delta).Delete(5, 1, 6, 1)
	if _, err := p.Remap(context.Background(), g.CanonicalDigest(0), bad, remap.Options{}); err == nil {
		t.Fatal("model-breaking delta accepted")
	}
	if _, err := p.Remap(context.Background(), g.CanonicalDigest(0), nil, remap.Options{}); err == nil {
		t.Fatal("nil delta accepted")
	}

	// A batch wiring its new nodes only among themselves adds a disconnected
	// island: legal per-node degrees, broken model. The structural patch must
	// reject it — and never cache an entry for the mutated digest.
	island := new(graph.Delta).AddNode().AddNode().
		Insert(16, 1, 17, 1).
		Insert(17, 1, 16, 1)
	if _, err := p.Remap(context.Background(), g.CanonicalDigest(0), island, remap.Options{MaxDirtyFrac: 1}); err == nil {
		t.Fatal("disconnected island delta accepted")
	}
	mutated, err := island.ApplyClone(j.Cached().Res.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if ent := p.Lookup(mutated, 0); ent != nil {
		t.Fatal("rejected island delta left a cache entry behind")
	}
}

// TestPoolRemapFlightCollision: the 64-bit flight key only routes — a
// foreign flight squatting on this delta's key must not share its outcome.
// The join verifies the delta text and patches unshared on a mismatch.
func TestPoolRemapFlightCollision(t *testing.T) {
	p := cachedPool(1)
	defer p.Close()
	ctx := context.Background()

	g := graph.Ring(24)
	j, err := p.Submit(ctx, g, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	base := g.CanonicalDigest(0)
	d := new(graph.Delta).Insert(15, 2, 3, 2)

	// Squat a completed flight under d's exact key, carrying a different
	// delta's text and a poisoned outcome that sharing would expose.
	baseKey := cache.Key{Digest: [cache.DigestSize]byte(base), Options: p.optFP}
	k := remapFlightKey(baseKey, d.MarshalText())
	fl, leader := p.remapFlights.Join(k, func() *remapFlight {
		return &remapFlight{delta: "patch +9:9>9:9", done: make(chan struct{})}
	})
	if !leader {
		t.Fatal("setup: flight key already occupied")
	}
	fl.out = &RemapOutcome{}
	close(fl.done)
	defer p.remapFlights.Forget(k)

	out, err := p.Remap(ctx, base, d, remap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Shared {
		t.Fatal("collided flight was shared")
	}
	mutated, err := d.ApplyClone(j.Cached().Res.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if out.Digest != mutated.CanonicalDigest(0) {
		t.Fatal("collision victim received the wrong result")
	}
}

// TestPoolRemapSingleflight: concurrent identical deltas against the same
// base collapse — every caller gets the same outcome, and the
// incremental+shared accounting covers all of them.
func TestPoolRemapSingleflight(t *testing.T) {
	p := cachedPool(2)
	defer p.Close()
	ctx := context.Background()

	g := graph.Ring(24)
	j, err := p.Submit(ctx, g, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	base := g.CanonicalDigest(0)
	d := new(graph.Delta).Insert(15, 2, 3, 2)

	const callers = 8
	outs := make([]*RemapOutcome, callers)
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			outs[i], errs[i] = p.Remap(ctx, base, d, remap.Options{})
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if outs[i].Digest != outs[0].Digest {
			t.Fatalf("caller %d disagrees on the content address", i)
		}
	}
	s := p.Stats()
	if got := s.RemapIncremental + s.RemapShared; got != callers {
		t.Fatalf("incremental %d + shared %d = %d, want %d",
			s.RemapIncremental, s.RemapShared, got, callers)
	}
	if s.RemapIncremental < 1 {
		t.Fatal("no leader counted")
	}
}

// TestCacheStatsConcurrentLookupEviction: the satellite race test — Lookup,
// Submit-driven eviction churn, Remap, and Stats snapshots all concurrent.
// The assertions are invariants (counters monotone within a snapshot's view,
// rates bounded); the real check is the race detector over the cache stats
// plumbing.
func TestCacheStatsConcurrentLookupEviction(t *testing.T) {
	p := New(Options{
		Size:       2,
		QueueDepth: 64,
		// One shard with room for only a couple of the ~2 KiB ring entries
		// below, so the churn evicts constantly (the byte budget splits per
		// shard — spread over 16 shards it would make every entry oversized
		// and store nothing).
		CacheBytes:  5 << 10,
		CacheShards: 1,
		Run:         core.Options{Workers: 1},
	})
	defer p.Close()
	ctx := context.Background()

	sizes := []int{8, 10, 12, 14, 16, 18}
	graphs := make([]*graph.Graph, len(sizes))
	for i, n := range sizes {
		graphs[i] = graph.Ring(n)
	}
	// Prime one base for the remap goroutine.
	j, err := p.Submit(ctx, graphs[0], JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := await(t, j); err != nil {
		t.Fatal(err)
	}
	base := graphs[0].CanonicalDigest(0)
	d := new(graph.Delta).Insert(5, 2, 2, 2)

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // eviction churn: distinct graphs through the submit path
		defer wg.Done()
		// Each graph is submitted twice back-to-back: the repeat hits the
		// just-inserted entry even while the wider cycle evicts (a pure
		// cycle through more graphs than fit would thrash LRU to zero hits).
		for i := 0; i < rounds; i++ {
			j, err := p.Submit(ctx, graphs[(i/2)%len(graphs)], JobOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			j.Await(ctx)
		}
	}()
	go func() { // zero-copy lookups racing the churn
		defer wg.Done()
		for i := 0; i < 4*rounds; i++ {
			p.Lookup(graphs[(i*7)%len(graphs)], 0)
		}
	}()
	go func() { // remaps racing eviction of their own base
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := p.Remap(ctx, base, d, remap.Options{}); err != nil && !errors.Is(err, ErrUnknownBase) {
				t.Errorf("remap: %v", err)
				return
			}
		}
	}()
	go func() { // stats snapshots racing everything
		defer wg.Done()
		for i := 0; i < 4*rounds; i++ {
			s := p.Stats()
			if s.CacheEntries < 0 || s.CacheBytes < 0 {
				t.Errorf("negative cache accounting: %+v", s)
				return
			}
			if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
				t.Errorf("hit rate %v out of range", s.CacheHitRate)
				return
			}
		}
	}()
	wg.Wait()

	s := p.Stats()
	if s.CacheEvictions == 0 {
		t.Fatal("churn produced no evictions; shrink CacheBytes")
	}
	if s.CacheHits == 0 {
		t.Fatal("no cache hits under churn")
	}
}
