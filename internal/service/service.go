// Package service is the long-lived mapping service layer: a Pool owns a
// fixed set of warm protocol sessions (internal/core) and feeds them from a
// bounded job queue. It is the concurrency engine behind topomap.MapBatch
// and topomap.NewService, and the serving core of cmd/topomapd.
//
// The layering contract: the pool owns the sessions for its whole lifetime —
// exactly one goroutine per session, each session serving one job at a time,
// so every run is identical to a sequential core.Session run (the engine's
// determinism guarantee extends through the pool: pool size and queue order
// change wall-clock time only, never a result bit). Jobs are served in
// submission order (FIFO); backpressure is explicit — a full queue either
// rejects the submit with ErrQueueFull or blocks it, per Options.Block.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"topomap/internal/cache"
	"topomap/internal/core"
	"topomap/internal/graph"
)

// Errors returned by Submit.
var (
	// ErrClosed reports a Submit after Close or Drain began.
	ErrClosed = errors.New("service: pool closed")
	// ErrQueueFull reports a rejected Submit: the job queue is at capacity
	// and the pool's backpressure policy is reject (Options.Block false).
	ErrQueueFull = errors.New("service: job queue full")
)

// Options configures a Pool.
type Options struct {
	// Size is the number of warm sessions — the pool's run-level
	// concurrency. Each session is owned by one goroutine for the pool's
	// lifetime. 0 uses runtime.GOMAXPROCS(0).
	Size int
	// QueueDepth bounds the number of submitted-but-not-yet-running jobs.
	// A Submit beyond it is rejected (ErrQueueFull) or blocks, per Block.
	// 0 picks 4×Size; negative means no waiting room (a Submit succeeds
	// only if a session is ready to take the job immediately).
	QueueDepth int
	// Block selects the backpressure policy for a full queue: false (the
	// default) rejects the Submit with ErrQueueFull, true blocks until
	// space frees, the submit context dies, or the pool closes.
	Block bool
	// DefaultDeadline bounds each job (queue wait + run) unless the job
	// overrides it; 0 means no default.
	DefaultDeadline time.Duration
	// ProgressEvery is the default tick granularity of per-job progress
	// events for jobs that set a Progress sink without an interval; 0
	// picks 64.
	ProgressEvery int
	// CacheBytes bounds the content-addressed result cache: repeat
	// submissions of an isomorphic (graph, root) pair under the same run
	// options are served from memory without an engine run, and concurrent
	// identical misses collapse onto one run (singleflight). 0 disables
	// caching entirely — every submit queues its own run, exactly the
	// pre-cache behaviour.
	CacheBytes int64
	// CacheShards is the cache's shard count (lock granularity); 0 picks
	// 16. Rounded up to a power of two.
	CacheShards int
	// Run configures every run of the pool (root, tick budget, engine
	// workers, scheduling, protocol config); per-job overrides are limited
	// to JobOptions.Root.
	Run core.Options
}

// Stats is a point-in-time snapshot of a pool's counters.
type Stats struct {
	// Size and QueueCap echo the pool's configuration; QueueLen and
	// Running are the instantaneous queue depth and in-flight run count.
	Size     int
	QueueCap int
	QueueLen int
	Running  int

	// Submitted counts accepted jobs; Rejected counts ErrQueueFull
	// submits. Served counts jobs whose run actually executed (Failed of
	// them with an error); Canceled counts jobs finished without running
	// (canceled or expired in the queue). Panics counts runs that
	// panicked; their session is discarded and rebuilt.
	Submitted uint64
	Rejected  uint64
	Served    uint64
	Failed    uint64
	Canceled  uint64
	Panics    uint64

	// WarmServes counts served runs on a session that had already run at
	// least once (engine, automata, and decoder recycled); WarmHitRate is
	// WarmServes/Served. In steady state every serve beyond the first
	// Size is warm.
	WarmServes  uint64
	WarmHitRate float64

	// AllocsPerRun is the process-wide heap-allocation count since the
	// pool started, divided by Served — the same measure the E13/E16
	// experiments report. It overcounts under unrelated allocation in the
	// same process; within the serving daemon it tracks the warm-session
	// claim.
	AllocsPerRun uint64

	// Memory telemetry. EngineBytes/EngineBytesPerNode/ArenaBytes are the
	// buffer footprint of the session that most recently finished a run
	// (one session's view, not a pool-wide sum — pool sessions are
	// interchangeable, so one is representative of the steady state).
	// HeapInUse is the process-wide live-object heap, read at snapshot
	// time via runtime/metrics.
	EngineBytes        int64
	EngineBytesPerNode float64
	ArenaBytes         int64
	HeapInUse          uint64

	// Result-cache counters. CacheHits counts submits served straight from
	// the content-addressed cache (no engine run, no queueing); CacheMisses
	// counts submits that started a fresh engine run (singleflight
	// leaders); CacheShared counts submits that collapsed onto an identical
	// run already in flight. CacheHits+CacheMisses+CacheShared is the
	// number of cache-eligible submits. CacheEvictions/CacheBytes/
	// CacheEntries are the LRU's displacement count and accounted
	// footprint. All zero when the cache is disabled.
	CacheHits      uint64
	CacheMisses    uint64
	CacheShared    uint64
	CacheEvictions uint64
	CacheBytes     int64
	CacheEntries   int
	// CacheHitRate is CacheHits over cache-eligible submits.
	CacheHitRate float64

	// Remap counters (the delta-patching tier; all zero when the cache is
	// disabled). RemapIncremental counts remaps served by the structural
	// patch — no engine run; RemapFull counts remaps whose dirty set forced
	// the full-protocol fallback (those runs also appear in Served/
	// CacheMisses, because the fallback rides the ordinary submit path);
	// RemapShared counts remaps that collapsed onto an identical patch in
	// flight; RemapBaseMisses counts remaps rejected because their base
	// digest was not cached.
	RemapIncremental uint64
	RemapFull        uint64
	RemapShared      uint64
	RemapBaseMisses  uint64

	// AvgQueueWait and AvgRun are means over served runs (the cold path);
	// AvgHit is the mean submit-to-completion latency of cache hits (key
	// derivation + lookup — no engine run). The Total* sums are the same
	// accumulators un-divided, for /metrics-style exposition.
	AvgQueueWait   time.Duration
	AvgRun         time.Duration
	AvgHit         time.Duration
	TotalQueueWait time.Duration
	TotalRun       time.Duration
	TotalHit       time.Duration

	// Closed reports that Close or Drain has begun: submits are rejected.
	Closed bool
}

// Pool is a fixed-size pool of warm mapping sessions fed by a bounded FIFO
// job queue. All methods are safe for concurrent use.
type Pool struct {
	opts  Options
	queue chan *Job

	// closedCh unblocks blocked submitters when shutdown begins; mu guards
	// closed, the submitter count, and the live-job registry. queueClosed
	// ensures the queue channel is closed exactly once, after every
	// submitter in flight has either enqueued or bailed.
	mu          sync.Mutex
	closed      bool
	closedCh    chan struct{}
	submitters  sync.WaitGroup
	queueClosed sync.Once
	jobs        map[uint64]*Job
	nextID      uint64

	workers sync.WaitGroup

	// cache is the content-addressed result store (nil when disabled);
	// flights is the singleflight registry collapsing concurrent identical
	// misses; remapFlights does the same for concurrent identical deltas
	// (Remap); optFP is the pool's precomputed options fingerprint — run
	// options are fixed for the pool's lifetime, so it never changes.
	cache        *cache.Cache[*Cached]
	flights      cache.Group[flight]
	remapFlights cache.Group[remapFlight]
	optFP        uint64

	// lastMem is the memory report of the most recent finished run's
	// session, refreshed by workers after every serve; memMu guards it.
	memMu   sync.Mutex
	lastMem core.MemInfo

	baseMallocs uint64
	stats       struct {
		submitted, rejected, served, failed, canceled, panics, warm counter
		hits, misses, shared                                        counter
		remapInc, remapFull, remapShared, remapBaseMiss             counter
		running, queueWaitNs, runNs, hitNs                          gauge
	}
}

// New starts a pool: Size session-owning goroutines, all warm-starting
// lazily on their first job. The caller must Close (or Drain) the pool when
// done.
func New(opts Options) *Pool {
	if opts.Size <= 0 {
		opts.Size = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 4 * opts.Size
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 64
	}
	p := &Pool{
		opts:        opts,
		queue:       make(chan *Job, opts.QueueDepth),
		closedCh:    make(chan struct{}),
		jobs:        make(map[uint64]*Job),
		baseMallocs: mallocs(),
	}
	if opts.CacheBytes > 0 {
		p.cache = cache.New[*Cached](opts.CacheBytes, opts.CacheShards)
		p.optFP = optionsFingerprint(opts.Run)
	}
	p.workers.Add(opts.Size)
	for i := 0; i < opts.Size; i++ {
		go p.worker()
	}
	return p
}

// Submit enqueues a mapping job and returns its handle. The job runs with
// the pool's Run options (plus any JobOptions overrides) on the next free
// session, in FIFO order. ctx governs the submit itself (a blocked submit
// aborts when it dies) and the job's lifetime: cancelling it cancels the
// job, queued or running. A full queue rejects (ErrQueueFull) or blocks,
// per the pool's backpressure policy; a closed pool rejects with ErrClosed.
//
// With a result cache configured (Options.CacheBytes), Submit first
// content-addresses the request — the canonical digest of the graph
// anchored at the effective root, plus the pool's options fingerprint. A
// hit completes the job immediately with the cached result (no engine run,
// no queueing); a request identical to a run already in flight attaches to
// that run instead of queueing a duplicate (singleflight); only a genuine
// miss queues an engine run, whose successful result populates the cache on
// the way out. Job.CacheState reports which path served the job.
func (p *Pool) Submit(ctx context.Context, g *graph.Graph, opts JobOptions) (*Job, error) {
	if g == nil {
		return nil, errors.New("service: nil graph")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.submitters.Add(1)
	p.mu.Unlock()
	defer p.submitters.Done()

	if p.cache != nil && !opts.NoCache {
		root := p.opts.Run.Root
		if opts.Root != nil {
			root = *opts.Root
		}
		if key, ok := p.cacheKey(g, root); ok {
			return p.submitCached(ctx, g, opts, key, root)
		}
	}

	j := p.newJob(ctx, g, opts)
	if err := p.enqueue(ctx, j); err != nil {
		p.release(j)
		return nil, err
	}
	p.stats.submitted.add(1)
	return j, nil
}

// submitCached is the cache-eligible half of Submit: serve a hit from
// memory, attach a shared request to the identical run in flight, or lead a
// new flight whose single internal job runs the engine for every waiter.
func (p *Pool) submitCached(ctx context.Context, g *graph.Graph, opts JobOptions, key cache.Key, root int) (*Job, error) {
	start := time.Now()
	if ent, ok := p.cache.Get(key); ok {
		j := p.newJob(ctx, g, opts)
		j.digest, j.hasDigest = graph.Digest(key.Digest), true
		j.cacheState = CacheHit
		p.stats.hits.add(1)
		p.stats.submitted.add(1)
		p.stats.hitNs.add(int64(time.Since(start)))
		j.finishShared(ent, ent.Res, nil)
		return j, nil
	}
	fl, leader := p.flights.Join(key, func() *flight { return &flight{key: key} })
	if !leader {
		j := p.newJob(ctx, g, opts)
		j.digest, j.hasDigest = graph.Digest(key.Digest), true
		j.cacheState = CacheShared
		p.stats.shared.add(1)
		p.stats.submitted.add(1)
		if !fl.attach(j) {
			// The flight completed between Join and attach; its recorded
			// outcome is immutable now, so serve it directly.
			j.finishShared(fl.ent, fl.res, fl.err)
		}
		return j, nil
	}

	// Leader: one internal job runs the engine under a context detached
	// from any individual requester, so a waiter's cancellation can never
	// poison the run for the others. The requester becomes the flight's
	// first waiter like everyone else.
	j := p.newJob(ctx, g, opts)
	j.digest, j.hasDigest = graph.Digest(key.Digest), true
	j.cacheState = CacheMiss
	fl.attach(j)
	ij := p.newFlightJob(fl, g, root)
	if err := p.enqueue(ctx, ij); err != nil {
		// The flight never got its run: fail it for every waiter that
		// managed to attach, then surface the submit error to the leader's
		// caller like any rejected Submit.
		p.flights.Forget(key)
		p.release(ij)
		for _, w := range fl.completeAll(nil, nil, err) {
			w.finishShared(nil, nil, err)
		}
		return nil, err
	}
	p.stats.misses.add(1)
	p.stats.submitted.add(1)
	return j, nil
}

// newFlightJob builds the internal job that runs the engine for a flight:
// detached from every requester's context (bounded only by the pool's
// DefaultDeadline), fanning progress out to the flight's waiters, and
// broadcasting its outcome — after populating the cache — via finishFlight.
func (p *Pool) newFlightJob(fl *flight, g *graph.Graph, root int) *Job {
	return p.newJob(context.Background(), g, JobOptions{
		Root:          &root,
		Progress:      fl.fanProgress,
		ProgressEvery: p.opts.ProgressEvery,
		OnDone:        func(ij *Job) { p.finishFlight(fl, ij) },
	})
}

// finishFlight is the internal job's completion hook: build the cache entry
// (successful runs only — both wire encodings plus the one-time verification
// against the flight's input graph), populate the cache, retire the flight
// key so later submits start fresh (or hit the entry just written), then
// broadcast to every waiter. Runs on the goroutine that finished the
// internal job; the encode cost rides on the run it amortises, never on a
// hit.
func (p *Pool) finishFlight(fl *flight, ij *Job) {
	res, err := ij.Outcome()
	var ent *Cached
	if err == nil && res != nil {
		ent = newCached(ij.g, ij.root, res)
		p.cache.Put(fl.key, ent, ent.cost())
	}
	p.flights.Forget(fl.key)
	for _, w := range fl.completeAll(ent, res, err) {
		w.finishShared(ent, res, err)
	}
}

// Lookup is the zero-copy serving fast path: content-address the request
// (pooled canonical digest — no allocation) and return the cache entry with
// its pre-encoded wire bytes, or nil on a miss. No job is created, nothing
// is queued, and no context or channel machinery runs — a hit costs the
// digest plus one sharded-LRU read, and is counted in the pool's hit
// statistics exactly like a Submit-path hit. On nil the caller falls back to
// Submit, which re-derives the key (the duplicated digest is cold-path cost,
// dwarfed by the engine run it precedes).
func (p *Pool) Lookup(g *graph.Graph, root int) *Cached {
	ent, _, _ := p.LookupDigest(g, root)
	return ent
}

// LookupDigest is Lookup surfacing the content address it computes anyway:
// the cache-key digest of (g, root), the base a later Remap delta chains
// from. ok reports whether a key was derived at all (false when the cache
// is off or g is nil) — on a miss ok is still true and ent is nil, so a
// server can hand the digest to clients alongside the Submit it falls back
// to. Identical cost to Lookup on the hit path: the digest is returned by
// value, nothing extra is computed or allocated.
func (p *Pool) LookupDigest(g *graph.Graph, root int) (ent *Cached, dig graph.Digest, ok bool) {
	if p.cache == nil || g == nil {
		return nil, graph.Digest{}, false
	}
	key, ok := p.cacheKey(g, root)
	if !ok {
		return nil, graph.Digest{}, false
	}
	dig = graph.Digest(key.Digest)
	start := time.Now()
	ent, hit := p.cache.Get(key)
	if !hit {
		return nil, dig, true
	}
	p.stats.hits.add(1)
	p.stats.hitNs.add(int64(time.Since(start)))
	return ent, dig, true
}

// enqueue pushes a job into the queue under the pool's backpressure policy.
// ctx bounds a blocked enqueue; the caller owns releasing the job on error.
func (p *Pool) enqueue(ctx context.Context, j *Job) error {
	if p.opts.Block {
		select {
		case p.queue <- j:
		case <-p.closedCh:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	} else {
		select {
		case p.queue <- j:
		case <-p.closedCh:
			return ErrClosed
		default:
			p.stats.rejected.add(1)
			return ErrQueueFull
		}
	}
	return nil
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	s := Stats{
		Size:       p.opts.Size,
		QueueCap:   p.opts.QueueDepth,
		QueueLen:   len(p.queue),
		Running:    int(p.stats.running.get()),
		Submitted:  p.stats.submitted.get(),
		Rejected:   p.stats.rejected.get(),
		Served:     p.stats.served.get(),
		Failed:     p.stats.failed.get(),
		Canceled:   p.stats.canceled.get(),
		Panics:     p.stats.panics.get(),
		WarmServes: p.stats.warm.get(),
		HeapInUse:  heapInUse(),
		Closed:     closed,
	}
	p.memMu.Lock()
	s.EngineBytes = p.lastMem.Engine.TotalBytes
	s.EngineBytesPerNode = p.lastMem.BytesPerNode
	s.ArenaBytes = p.lastMem.ArenaBytes
	p.memMu.Unlock()
	s.TotalQueueWait = time.Duration(p.stats.queueWaitNs.get())
	s.TotalRun = time.Duration(p.stats.runNs.get())
	s.TotalHit = time.Duration(p.stats.hitNs.get())
	if s.Served > 0 {
		s.WarmHitRate = float64(s.WarmServes) / float64(s.Served)
		s.AllocsPerRun = (mallocs() - p.baseMallocs) / s.Served
		s.AvgQueueWait = s.TotalQueueWait / time.Duration(s.Served)
		s.AvgRun = s.TotalRun / time.Duration(s.Served)
	}
	s.CacheHits = p.stats.hits.get()
	s.CacheMisses = p.stats.misses.get()
	s.CacheShared = p.stats.shared.get()
	s.RemapIncremental = p.stats.remapInc.get()
	s.RemapFull = p.stats.remapFull.get()
	s.RemapShared = p.stats.remapShared.get()
	s.RemapBaseMisses = p.stats.remapBaseMiss.get()
	if p.cache != nil {
		cs := p.cache.Stats()
		s.CacheEvictions = cs.Evictions
		s.CacheBytes = cs.Bytes
		s.CacheEntries = cs.Entries
	}
	if eligible := s.CacheHits + s.CacheMisses + s.CacheShared; eligible > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(eligible)
	}
	if s.CacheHits > 0 {
		s.AvgHit = s.TotalHit / time.Duration(s.CacheHits)
	}
	return s
}

// beginShutdown stops intake: submits fail with ErrClosed, blocked submits
// abort, and — once every in-flight submit has resolved — the queue channel
// is closed so workers drain it and exit. Idempotent.
func (p *Pool) beginShutdown() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.closedCh)
	}
	p.mu.Unlock()
	p.submitters.Wait()
	p.queueClosed.Do(func() { close(p.queue) })
}

// cancelLive cancels every queued or running job.
func (p *Pool) cancelLive() {
	p.mu.Lock()
	live := make([]*Job, 0, len(p.jobs))
	for _, j := range p.jobs {
		live = append(live, j)
	}
	p.mu.Unlock()
	for _, j := range live {
		j.Cancel()
	}
}

// Drain shuts the pool down gracefully: intake stops immediately (submits
// fail with ErrClosed), every already-accepted job is served to completion,
// and the sessions are released. ctx bounds the wait: if it dies first the
// remaining jobs are canceled (queued ones finish with their context error,
// running ones abort between ticks) and Drain returns ctx's error after the
// pool has fully stopped. Safe to call concurrently with Close and again
// after either.
func (p *Pool) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.beginShutdown()
	done := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.cancelLive()
		<-done
		return ctx.Err()
	}
}

// Close shuts the pool down promptly: intake stops, every queued or running
// job is canceled (running ones abort between ticks and finish with their
// context error), and Close returns once all sessions are released. It is
// idempotent and safe to call concurrently; a closed pool only rejects
// submits — job handles remain readable.
func (p *Pool) Close() error {
	p.beginShutdown()
	p.cancelLive()
	p.workers.Wait()
	return nil
}

// worker owns one core.Session for the pool's lifetime and serves queued
// jobs on it until the queue closes. A panicking run poisons the engine
// state, so the session is discarded and a fresh one warmed in its place.
func (p *Pool) worker() {
	defer p.workers.Done()
	s := core.NewSession(p.opts.Run)
	defer func() { s.Close() }()
	for j := range p.queue {
		if !p.serve(s, j) {
			s.Close()
			s = core.NewSession(p.opts.Run)
		}
	}
}

// serve runs one job on the worker's session. It reports false when the run
// panicked (the job is failed and the caller must replace the session).
func (p *Pool) serve(s *core.Session, j *Job) (ok bool) {
	if !j.toRunning() {
		return true // finished while queued (canceled/expired); nothing to run
	}
	started := time.Now()
	wait := started.Sub(j.submitted)
	if err := j.ctx.Err(); err != nil {
		// The job's context died while it sat in the queue: record the
		// plain context error without touching the session.
		p.stats.canceled.add(1)
		j.complete(nil, err, StatusCanceled, false)
		return true
	}
	// Snapshot warmth before the run: the session increments its run
	// counter on the way in, so reading it from the recover path would
	// count a panicking cold run as a warm serve.
	warm := s.Runs() > 0
	defer func() {
		if r := recover(); r != nil {
			p.stats.panics.add(1)
			p.stats.running.add(-1)
			p.finishServe(j, started, wait, nil,
				fmt.Errorf("service: run panicked: %v", r), warm)
		}
	}()
	p.stats.running.add(1)
	if j.progress != nil {
		sink := j.progress
		every := j.progressEvery
		s.SetProgress(every, func(sp simProgress) {
			sink(Progress{
				Tick:     sp.Tick,
				Frontier: sp.Frontier,
				Messages: sp.Messages,
				Steps:    sp.Steps,
				Elapsed:  time.Since(started),
			})
		})
	}
	res, err := s.RunRootedContext(j.ctx, j.g, j.root)
	if j.progress != nil {
		s.SetProgress(0, nil)
	}
	p.stats.running.add(-1)
	p.noteMem(s.Mem())
	p.finishServe(j, started, wait, res, err, warm)
	return true
}

// noteMem publishes a just-served session's memory report for Stats.
func (p *Pool) noteMem(m core.MemInfo) {
	p.memMu.Lock()
	p.lastMem = m
	p.memMu.Unlock()
}

// finishServe records the accounting of a run that executed and completes
// the job.
func (p *Pool) finishServe(j *Job, started time.Time, wait time.Duration, res *core.RunResult, err error, warm bool) {
	p.stats.served.add(1)
	if warm {
		p.stats.warm.add(1)
	}
	if err != nil {
		p.stats.failed.add(1)
	}
	p.stats.queueWaitNs.add(int64(wait))
	p.stats.runNs.add(int64(time.Since(started)))
	j.complete(res, err, StatusDone, true)
}

// register adds a job to the live registry (Close cancels what it finds
// there); release removes it and releases its context resources — the
// un-submit path for rejected jobs, and the completion path otherwise.
func (p *Pool) register(j *Job) {
	p.mu.Lock()
	p.jobs[j.id] = j
	p.mu.Unlock()
}

func (p *Pool) release(j *Job) {
	p.mu.Lock()
	delete(p.jobs, j.id)
	p.mu.Unlock()
	j.cancelCtx()
}

// mallocs reads the process-wide cumulative heap-allocation count via
// runtime/metrics — unlike runtime.ReadMemStats it does not stop the world,
// so a monitoring loop polling Pool.Stats never stalls in-flight runs.
func mallocs() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// heapInUse reads the process-wide live-heap size (bytes occupied by
// reachable plus not-yet-swept objects), same non-stopping mechanism as
// mallocs.
func heapInUse() uint64 {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
