package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"topomap/internal/cache"
	"topomap/internal/core"
	"topomap/internal/graph"
	"topomap/internal/remap"
)

// Errors returned by Remap.
var (
	// ErrNoCache reports a Remap on a pool without a result cache: the
	// delta-patching tier is an extension of content addressing and has no
	// meaning without it.
	ErrNoCache = errors.New("service: remap requires the result cache")
	// ErrUnknownBase reports a Remap whose base digest is not (or no longer)
	// in the cache — evicted, never mapped, or mapped under different run
	// options. The caller must fall back to submitting the full graph.
	ErrUnknownBase = errors.New("service: base reconstruction not cached")
)

// RemapKind classifies how a Remap produced its result.
type RemapKind int32

const (
	// RemapIncremental: the structural patch served the remap; no engine ran.
	RemapIncremental RemapKind = iota
	// RemapFull: the delta's dirty set exceeded the threshold and a full
	// protocol run on the mutated graph served the remap instead.
	RemapFull
)

// String renders the kind as the daemon's X-Topomap-Remap header value.
func (k RemapKind) String() string {
	if k == RemapFull {
		return "full"
	}
	return "incremental"
}

// RemapOutcome is the result of a Pool.Remap: the post-delta cache entry
// (pre-encoded wire bytes included, stored under the post-delta content
// address) plus how it was produced.
type RemapOutcome struct {
	// Ent is the post-delta entry, already resident in the cache: a later
	// Submit or Lookup of the mutated network hits it without any remap.
	Ent *Cached
	// Digest is the entry's content address — the canonical digest of the
	// post-delta reconstruction anchored at its root.
	Digest graph.Digest
	// Kind reports the serving path; Dirty is the number of labels the patch
	// replayed (the whole node count for RemapFull).
	Kind  RemapKind
	Dirty int
	// Shared reports that this call collapsed onto an identical remap
	// already in flight and shares its outcome.
	Shared bool
}

// remapFlight is one in-progress remap that concurrent identical requests
// (same base digest, same delta) share: the leader patches once, everyone
// reads the recorded outcome. delta is the leader's marshaled delta text,
// checked on every join — the flight key's 64-bit hash is not
// collision-proof, and a follower must never inherit a different delta's
// result.
type remapFlight struct {
	delta string
	done  chan struct{}
	out   *RemapOutcome
	err   error
}

// Remap patches a cached reconstruction under a delta: the request names its
// base by content address (the canonical digest a prior Submit/Lookup
// returned) and the delta's node ids live in that reconstruction's label
// space (node 0 = root). On success the post-delta entry is resident in the
// cache under its own content address and returned with its pre-encoded wire
// bytes — the PATCH serving path of cmd/topomapd.
//
// A delta whose dirty set stays within opt.MaxDirtyFrac is patched
// structurally without touching the engine; a dirtier one falls back to a
// full protocol run on the mutated graph through the pool's ordinary submit
// path (queueing, singleflight, and cache population included). Concurrent
// Remaps with the same base and delta collapse onto one patch. The result is
// bit-equal to a from-scratch map of the mutated network either way.
func (p *Pool) Remap(ctx context.Context, base graph.Digest, d *graph.Delta, opt remap.Options) (*RemapOutcome, error) {
	if p.cache == nil {
		return nil, ErrNoCache
	}
	if d == nil {
		return nil, errors.New("service: nil delta")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	baseKey := cache.Key{Digest: [cache.DigestSize]byte(base), Options: p.optFP}
	ent, ok := p.cache.Get(baseKey)
	if !ok {
		p.stats.remapBaseMiss.add(1)
		return nil, fmt.Errorf("%w: %x", ErrUnknownBase, base[:8])
	}

	dtext := d.MarshalText()
	flightKey := remapFlightKey(baseKey, dtext)
	fl, leader := p.remapFlights.Join(flightKey, func() *remapFlight {
		return &remapFlight{delta: dtext, done: make(chan struct{})}
	})
	if !leader {
		if fl.delta != dtext {
			// 64-bit flight-key collision between two different deltas:
			// sharing would hand this caller the other delta's result. Patch
			// unshared instead — correctness over collapse.
			return p.remapLead(ctx, ent, d, opt)
		}
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return nil, fl.err
		}
		out := *fl.out
		out.Shared = true
		p.stats.remapShared.add(1)
		return &out, nil
	}
	out, err := p.remapLead(ctx, ent, d, opt)
	fl.out, fl.err = out, err
	p.remapFlights.Forget(flightKey)
	close(fl.done)
	return out, err
}

// remapLead does the leader's work: derive (or reuse) the base entry's remap
// state, patch structurally, and on ErrTooDirty fall back to a full engine
// run of the mutated graph via the pool's own submit path.
func (p *Pool) remapLead(ctx context.Context, ent *Cached, d *graph.Delta, opt remap.Options) (*RemapOutcome, error) {
	st, err := ent.remapState()
	if err != nil {
		return nil, fmt.Errorf("service: remap state of cached entry: %w", err)
	}
	prev := ent.Res.Topology
	res, patchErr := remap.Patch(prev, st, d, opt)
	if patchErr == nil {
		post := res.Graph.CanonicalDigest(0)
		postKey := cache.Key{Digest: [cache.DigestSize]byte(post), Options: p.optFP}
		ent2, ok := p.cache.Get(postKey)
		if !ok {
			// The patched reconstruction is bit-identical to what a full map
			// of the mutated network returns (the remap layer's pinned
			// equivalence), so the entry is a first-class cache citizen: a
			// later POST of an isomorphic graph hits it. Exactness is
			// inherited — the delta's truth is the base reconstruction
			// itself, and the patch preserves the isomorphism class.
			ent2 = &Cached{
				Res:      &core.RunResult{Topology: res.Graph},
				Text:     res.Graph.MarshalString(),
				Exact:    ent.Exact,
				Edges:    res.Graph.NumEdges(),
				Remapped: true,
			}
			if bin, err := res.Graph.MarshalBinary(); err == nil {
				ent2.Bin = bin
			}
			ent2.st.Store(res.State)
			p.cache.Put(postKey, ent2, ent2.cost())
		}
		p.stats.remapInc.add(1)
		return &RemapOutcome{Ent: ent2, Digest: post, Kind: RemapIncremental, Dirty: res.Dirty}, nil
	}
	if !errors.Is(patchErr, remap.ErrTooDirty) {
		return nil, patchErr
	}

	// Fallback: full protocol run on the mutated graph, through Submit so it
	// gets the ordinary treatment — queueing, engine singleflight, and cache
	// population under the post-delta address on the way out.
	mutated, err := d.ApplyClone(prev)
	if err != nil {
		return nil, err
	}
	root := 0
	j, err := p.Submit(ctx, mutated, JobOptions{Root: &root})
	if err != nil {
		return nil, err
	}
	if _, err := j.Await(ctx); err != nil {
		return nil, err
	}
	ent2 := j.Cached()
	if ent2 == nil {
		return nil, errors.New("service: remap fallback produced no cache entry")
	}
	p.stats.remapFull.add(1)
	return &RemapOutcome{
		Ent:    ent2,
		Digest: mutated.CanonicalDigest(root),
		Kind:   RemapFull,
		Dirty:  mutated.N(),
	}, nil
}

// remapFlightKey addresses a remap flight: the base entry's cache key with
// the options half replaced by a hash of (options, delta text), so identical
// concurrent deltas against the same base collapse. The 64-bit hash only
// routes — Remap confirms the delta text on every join and patches unshared
// on a mismatch, so a collision can never serve the wrong delta's result.
func remapFlightKey(baseKey cache.Key, deltaText string) cache.Key {
	h := fnv.New64a()
	var opts [8]byte
	for i := range opts {
		opts[i] = byte(baseKey.Options >> (8 * i))
	}
	h.Write(opts[:])
	h.Write([]byte(deltaText))
	return cache.Key{Digest: baseKey.Digest, Options: h.Sum64()}
}
