package service

import (
	"context"
	"sync/atomic"
	"time"

	"topomap/internal/core"
	"topomap/internal/graph"
	"topomap/internal/sim"
)

// simProgress is the engine-layer snapshot the session progress tap emits.
type simProgress = sim.Progress

// Progress is one per-job progress event: the engine snapshot at a tick
// boundary plus the job's wall-clock so far. Events are delivered on the
// goroutine serving the job, so a sink that must not stall the run should
// hand off to a channel and drop when full (cmd/topomapd does).
type Progress struct {
	Tick     int
	Frontier int
	Messages int64
	Steps    int64
	Elapsed  time.Duration
}

// JobStatus is the lifecycle state of a Job.
type JobStatus int32

const (
	// StatusQueued: accepted, waiting for a session.
	StatusQueued JobStatus = iota
	// StatusRunning: a session is executing the run.
	StatusRunning
	// StatusDone: the run executed; Await returns its result or error.
	StatusDone
	// StatusCanceled: the job finished without running (canceled or
	// expired while queued); Await returns its context's error.
	StatusCanceled
)

// String names the status for logs and the daemon's JSON.
func (s JobStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusCanceled:
		return "canceled"
	}
	return "invalid"
}

// JobOptions are the per-job overrides of a Submit; the zero value inherits
// everything from the pool.
type JobOptions struct {
	// Root overrides the pool's configured root processor; nil keeps it.
	Root *int
	// Deadline bounds the job (queue wait + run). 0 inherits the pool's
	// DefaultDeadline; negative disables the deadline for this job.
	Deadline time.Duration
	// Progress, if non-nil, receives progress events during the run, every
	// ProgressEvery ticks, on the serving goroutine.
	Progress func(Progress)
	// ProgressEvery is the tick granularity of progress events; 0 inherits
	// the pool's ProgressEvery, 1 reports every tick.
	ProgressEvery int
	// OnDone, if non-nil, is invoked exactly once when the job reaches a
	// terminal state, synchronously on the goroutine that finished it: the
	// serving worker for run outcomes (which does not dequeue its next job
	// until the callback returns — MapBatch's StopOnError ordering depends
	// on this), or the canceling/awaiting goroutine for jobs finished
	// while queued. Done is already closed when it runs, so Outcome is
	// valid. It must return quickly and must not call back into the pool.
	OnDone func(*Job)
	// NoCache bypasses the pool's result cache for this job: no lookup, no
	// singleflight attachment, and the run's result is not stored. The job
	// behaves exactly as on a cache-less pool.
	NoCache bool
}

// Job is the async handle of a submitted mapping run. Await (or Done) is the
// synchronisation point; Cancel aborts the job (immediately when queued,
// between clock ticks when running). A Job's accessors are safe for
// concurrent use.
type Job struct {
	id   uint64
	pool *Pool
	g    *graph.Graph
	root int

	// ctx is the job's lifetime context (submit ctx + per-job deadline);
	// cancelCtx releases it. Workers poll it between ticks.
	ctx       context.Context
	cancelCtx context.CancelFunc

	progress      func(Progress)
	progressEvery int
	onDone        func(*Job)

	submitted time.Time

	// cacheState is written by Submit before the handle is returned (and
	// never after), so a plain field read in CacheState is safe.
	cacheState CacheState

	// digest/hasDigest are the job's cache-key content address, written by
	// submitCached before the handle is returned (and never after). Zero
	// when the cache is off or bypassed.
	digest    graph.Digest
	hasDigest bool

	status atomic.Int32
	done   chan struct{}
	// res/err/ran/cached are written exactly once, before done is closed,
	// and read only after it.
	res    *core.RunResult
	err    error
	ran    bool
	cached *Cached
}

// newJob builds and registers a job handle for Submit.
func (p *Pool) newJob(ctx context.Context, g *graph.Graph, opts JobOptions) *Job {
	root := p.opts.Run.Root
	if opts.Root != nil {
		root = *opts.Root
	}
	deadline := opts.Deadline
	if deadline == 0 {
		deadline = p.opts.DefaultDeadline
	}
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = p.opts.ProgressEvery
	}
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.mu.Unlock()
	j := &Job{
		id:            id,
		pool:          p,
		g:             g,
		root:          root,
		ctx:           ctx,
		cancelCtx:     cancel,
		progress:      opts.Progress,
		progressEvery: every,
		onDone:        opts.OnDone,
		submitted:     time.Now(),
		done:          make(chan struct{}),
	}
	p.register(j)
	return j
}

// Status reports the job's lifecycle state.
func (j *Job) Status() JobStatus { return JobStatus(j.status.Load()) }

// CacheState reports how the submit met the pool's result cache: CacheHit
// (served from memory, already done when Submit returned), CacheShared
// (attached to an identical run in flight), CacheMiss (this submit started
// the run that will populate the cache), or CacheNone (cache disabled or
// bypassed). Fixed at submit time.
func (j *Job) CacheState() CacheState { return j.cacheState }

// Digest returns the content address the job's (graph, root) is cached
// under — the base a later Remap delta chains from — and whether one was
// computed (false when the cache is off or the submit bypassed it). Fixed
// at submit time; hit, shared, and miss jobs all carry it.
func (j *Job) Digest() (graph.Digest, bool) { return j.digest, j.hasDigest }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Ran reports, after the job is done, whether a session actually executed
// the run: true means the outcome (result or error) came from the run
// itself, false that the job was canceled or expired while queued and the
// error is its context's.
func (j *Job) Ran() bool {
	select {
	case <-j.done:
		return j.ran
	default:
		return false
	}
}

// Await blocks until the job finishes and returns its outcome. ctx bounds
// the wait only — it does not cancel the job (use Cancel, or cancel the
// submit context). Await may be called by any number of goroutines.
func (j *Job) Await(ctx context.Context) (*core.RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.ctx.Done():
		// The job's own context died. If it is still queued, finish it
		// here rather than waiting for a worker to reach the corpse; if
		// it is running, the serving worker owns completion (the engine
		// aborts between ticks).
		if !j.finishFromQueued(j.ctx.Err()) {
			select {
			case <-j.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return j.res, j.err
}

// Cancel aborts the job: a queued job finishes immediately with its context
// error, a running one aborts between clock ticks and finishes with the
// run's cancellation error. Idempotent; safe after completion.
func (j *Job) Cancel() {
	j.cancelCtx()
	j.finishFromQueued(j.ctx.Err())
}

// toRunning claims the job for a serving worker. It fails if the job was
// finished while queued.
func (j *Job) toRunning() bool {
	return j.status.CompareAndSwap(int32(StatusQueued), int32(StatusRunning))
}

// Outcome returns the job's result and error. It is valid only once Done is
// closed (both nil before then).
func (j *Job) Outcome() (*core.RunResult, error) {
	select {
	case <-j.done:
		return j.res, j.err
	default:
		return nil, nil
	}
}

// Cached returns the result-cache entry that served this job — pre-encoded
// wire bytes included — or nil: before the job is done, on error outcomes,
// and on jobs whose run bypassed the cache (NoCache, cache off, or a
// non-addressable root). Hit, shared, and miss jobs all carry the entry;
// for a miss it is the entry this job's run just populated.
func (j *Job) Cached() *Cached {
	select {
	case <-j.done:
		return j.cached
	default:
		return nil
	}
}

// finishFromQueued completes a still-queued job with err (no run executed).
// It reports whether this call performed the transition.
func (j *Job) finishFromQueued(err error) bool {
	if !j.status.CompareAndSwap(int32(StatusQueued), int32(StatusCanceled)) {
		return false
	}
	if err == nil {
		err = context.Canceled
	}
	j.pool.stats.canceled.add(1)
	j.res, j.err, j.ran = nil, err, false
	close(j.done)
	j.pool.release(j)
	if j.onDone != nil {
		j.onDone(j)
	}
	return true
}

// finishShared completes a job whose outcome came from the cache or a
// shared flight — the job was never queued, so it moves straight from
// Queued to Done. The CAS loses (and the call is a no-op) if the job was
// already canceled; ran is true because the outcome did come from an engine
// run, just not one this job queued. ent carries the cache entry with the
// pre-encoded wire bytes (nil on error outcomes).
func (j *Job) finishShared(ent *Cached, res *core.RunResult, err error) {
	if !j.status.CompareAndSwap(int32(StatusQueued), int32(StatusDone)) {
		return
	}
	j.cached = ent
	j.res, j.err, j.ran = res, err, true
	close(j.done)
	j.pool.release(j)
	if j.onDone != nil {
		j.onDone(j)
	}
}

// complete finishes a job the worker claimed (status Running): only the
// serving worker calls it, so a plain store suffices.
func (j *Job) complete(res *core.RunResult, err error, st JobStatus, ran bool) {
	j.res, j.err, j.ran = res, err, ran
	j.status.Store(int32(st))
	close(j.done)
	j.pool.release(j)
	if j.onDone != nil {
		j.onDone(j)
	}
}

// counter and gauge are tiny aliases over the atomic types, so the pool's
// stats block reads as what it is.
type counter struct{ atomic.Uint64 }

func (c *counter) add(n uint64) { c.Uint64.Add(n) }
func (c *counter) get() uint64  { return c.Uint64.Load() }

type gauge struct{ atomic.Int64 }

func (g *gauge) add(n int64) { g.Int64.Add(n) }
func (g *gauge) get() int64  { return g.Int64.Load() }
