package topomap_test

import (
	"context"
	"fmt"
	"testing"

	"topomap"
	"topomap/internal/experiments"
)

// Experiment benchmarks: one per table/series of DESIGN.md §4. Each runs
// the experiment harness at Quick scale per iteration; cmd/topobench -full
// regenerates the published tables. Custom metrics surface the headline
// number of each experiment.

func benchExperiment(b *testing.B, id string) {
	run, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1Correctness(b *testing.B)      { benchExperiment(b, "e1") }
func BenchmarkE2GTDScaling(b *testing.B)       { benchExperiment(b, "e2") }
func BenchmarkE3RCACost(b *testing.B)          { benchExperiment(b, "e3") }
func BenchmarkE4BCACost(b *testing.B)          { benchExperiment(b, "e4") }
func BenchmarkE5LowerBound(b *testing.B)       { benchExperiment(b, "e5") }
func BenchmarkE6Undisturbed(b *testing.B)      { benchExperiment(b, "e6") }
func BenchmarkE7CleanupSlack(b *testing.B)     { benchExperiment(b, "e7") }
func BenchmarkE8Baseline(b *testing.B)         { benchExperiment(b, "e8") }
func BenchmarkE9EngineThroughput(b *testing.B) { benchExperiment(b, "e9") }
func BenchmarkE10SpeedAblation(b *testing.B)   { benchExperiment(b, "e10") }
func BenchmarkE11Families(b *testing.B)        { benchExperiment(b, "e11") }
func BenchmarkE12Pigeonhole(b *testing.B)      { benchExperiment(b, "e12") }
func BenchmarkE13Batch(b *testing.B)           { benchExperiment(b, "e13") }
func BenchmarkE14Frontier(b *testing.B)        { benchExperiment(b, "e14") }
func BenchmarkE15Adaptive(b *testing.B)        { benchExperiment(b, "e15") }
func BenchmarkE16Serve(b *testing.B)           { benchExperiment(b, "e16") }
func BenchmarkE17Hostile(b *testing.B)         { benchExperiment(b, "e17") }
func BenchmarkE18Scale(b *testing.B)           { benchExperiment(b, "e18") }
func BenchmarkE19CachedServe(b *testing.B)     { benchExperiment(b, "e19") }
func BenchmarkE20WireCodec(b *testing.B)       { benchExperiment(b, "e20") }
func BenchmarkE21DynamicRemap(b *testing.B)    { benchExperiment(b, "e21") }

// Session-reuse benchmarks: the fresh/reused pair quantifies the session
// refactor's allocation claim (run with -benchmem; the reused steady state
// must allocate ≥10× less than fresh Map on the 64-node ring — it is a
// handful of allocations, all in the returned Result and reconstruction).

func BenchmarkMapFreshRing64(b *testing.B) {
	g := topomap.Ring(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topomap.Map(g, topomap.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSessionRing64(b *testing.B) {
	g := topomap.Ring(64)
	s := topomap.NewSession(topomap.Options{Workers: 1})
	defer s.Close()
	if _, err := s.Map(g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Map(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapBatchTorus measures batch throughput per pool size on one
// op = a 16-graph corpus.
func BenchmarkMapBatchTorus(b *testing.B) {
	for _, sessions := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("sessions%d", sessions), func(b *testing.B) {
			graphs := make([]*topomap.Graph, 16)
			for i := range graphs {
				graphs[i] = topomap.Torus(4, 5)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items, err := topomap.MapBatch(context.Background(), graphs,
					topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: sessions})
				if err != nil {
					b.Fatal(err)
				}
				for _, it := range items {
					if it.Err != nil {
						b.Fatal(it.Err)
					}
				}
			}
			b.ReportMetric(float64(len(graphs)), "graphs/op")
		})
	}
}

// Micro-benchmarks of the public API across families and sizes: the cost of
// one complete GTD run, with ticks and ticks/(N·D) reported.

func benchMap(b *testing.B, fam topomap.Family, n int) {
	g, err := topomap.Build(fam, n, 3)
	if err != nil {
		b.Fatal(err)
	}
	d := g.Diameter()
	b.ResetTimer()
	var ticks int
	for i := 0; i < b.N; i++ {
		res, err := topomap.Map(g, topomap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ticks = res.Ticks
	}
	b.ReportMetric(float64(ticks), "ticks")
	b.ReportMetric(float64(ticks)/float64(g.N()*d), "ticks/ND")
}

func BenchmarkMapRing16(b *testing.B)     { benchMap(b, topomap.FamilyRing, 16) }
func BenchmarkMapRing64(b *testing.B)     { benchMap(b, topomap.FamilyRing, 64) }
func BenchmarkMapTorus36(b *testing.B)    { benchMap(b, topomap.FamilyTorus, 36) }
func BenchmarkMapTorus100(b *testing.B)   { benchMap(b, topomap.FamilyTorus, 100) }
func BenchmarkMapKautz24(b *testing.B)    { benchMap(b, topomap.FamilyKautz, 24) }
func BenchmarkMapKautz96(b *testing.B)    { benchMap(b, topomap.FamilyKautz, 96) }
func BenchmarkMapRandom32(b *testing.B)   { benchMap(b, topomap.FamilyRandom, 32) }
func BenchmarkMapHypercube(b *testing.B)  { benchMap(b, topomap.FamilyHypercube, 16) }
func BenchmarkMapTreeLoop31(b *testing.B) { benchMap(b, topomap.FamilyTreeLoop, 31) }

// Primitive benchmarks: one standalone BCA / RCA transaction.

func BenchmarkSendBackwardRing32(b *testing.B) {
	g := topomap.Ring(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topomap.SendBackward(g, 0, 1, topomap.PayloadPing, topomap.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignalRootTorus64(b *testing.B) {
	g := topomap.Torus(8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topomap.SignalRoot(g, 37, true, 1, 1, topomap.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate benchmarks.

func BenchmarkGraphGenKautz(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := topomap.Build(topomap.FamilyKautz, 96, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphCanonical(b *testing.B) {
	g, _ := topomap.Build(topomap.FamilyKautz, 96, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CanonicalFrom(0)
	}
}

func BenchmarkGraphDiameter(b *testing.B) {
	g, _ := topomap.Build(topomap.FamilyTorus, 144, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Diameter()
	}
}

// Scaling series rendered as sub-benchmarks (the "figure" form of E2).
func BenchmarkMapScaling(b *testing.B) {
	for _, n := range []int{12, 24, 48} {
		for _, fam := range []topomap.Family{topomap.FamilyRing, topomap.FamilyTorus, topomap.FamilyKautz} {
			g, err := topomap.Build(fam, n, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/N%d", fam, g.N()), func(b *testing.B) {
				var ticks int
				for i := 0; i < b.N; i++ {
					res, err := topomap.Map(g, topomap.Options{})
					if err != nil {
						b.Fatal(err)
					}
					ticks = res.Ticks
				}
				b.ReportMetric(float64(ticks), "ticks")
			})
		}
	}
}
