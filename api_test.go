package topomap_test

import (
	"strings"
	"testing"

	"topomap"
)

func TestMapErrorPaths(t *testing.T) {
	g := topomap.NewGraph(3, 2)
	g.MustConnect(0, 1, 1, 1)
	g.MustConnect(1, 1, 0, 1)
	// Node 2 unwired: invalid network.
	if _, err := topomap.Map(g, topomap.Options{}); err == nil {
		t.Fatal("invalid network must be rejected")
	}
	valid := topomap.Ring(4)
	if _, err := topomap.Map(valid, topomap.Options{Root: -1}); err == nil {
		t.Fatal("negative root must be rejected")
	}
	if _, err := topomap.Map(valid, topomap.Options{Root: 4}); err == nil {
		t.Fatal("root beyond N must be rejected")
	}
	if _, err := topomap.Map(valid, topomap.Options{MaxTicks: 3}); err == nil {
		t.Fatal("a 3-tick budget cannot complete the protocol")
	}
}

func TestMapAllFamilies(t *testing.T) {
	for _, fam := range topomap.AllFamilies() {
		g, err := topomap.Build(fam, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		res, err := topomap.Map(g, topomap.Options{Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !topomap.Verify(g, 0, res.Topology) {
			t.Errorf("%s: inexact map", fam)
		}
	}
}

// TestMapWorkersDeterminism is the public face of the engine's determinism
// guarantee: Map with any Workers value returns the identical
// reconstruction, tick count, message count, and transaction count.
func TestMapWorkersDeterminism(t *testing.T) {
	g := topomap.Torus(5, 6)
	base, err := topomap.Map(g, topomap.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		res, err := topomap.Map(g, topomap.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Ticks != base.Ticks || res.Messages != base.Messages || res.Transactions != base.Transactions {
			t.Fatalf("workers=%d diverged: (%d,%d,%d) vs sequential (%d,%d,%d)",
				workers, res.Ticks, res.Messages, res.Transactions,
				base.Ticks, base.Messages, base.Transactions)
		}
		if !res.Topology.Equal(base.Topology) {
			t.Fatalf("workers=%d reconstructed a different topology", workers)
		}
	}
}

func TestMapCustomSpeedsStillExact(t *testing.T) {
	// Slowing UNMARK to speed-1 is a conservative change (more cleanup
	// slack); the protocol must still map exactly.
	g := topomap.Torus(3, 4)
	res, err := topomap.Map(g, topomap.Options{
		Speeds: &topomap.Speeds{Snake: 2, Loop: 2, Unmark: 2, Kill: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !topomap.Verify(g, 0, res.Topology) {
		t.Fatal("conservative speed change broke the map")
	}
}

func TestSendBackwardErrorPaths(t *testing.T) {
	g := topomap.Ring(5)
	if _, err := topomap.SendBackward(g, 0, 2, topomap.PayloadPing, topomap.Options{}); err == nil {
		t.Fatal("unwired in-port must be rejected")
	}
	if _, err := topomap.SendBackward(g, 7, 1, topomap.PayloadPing, topomap.Options{}); err == nil {
		t.Fatal("node out of range must be rejected")
	}
}

func TestSendBackwardEveryRingNode(t *testing.T) {
	g := topomap.Ring(6)
	for v := 0; v < g.N(); v++ {
		res, err := topomap.SendBackward(g, v, 1, topomap.PayloadPong, topomap.Options{})
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		want := (v + 5) % 6
		if res.Target != want {
			t.Fatalf("node %d: delivered to %d, want %d", v, res.Target, want)
		}
	}
}

func TestSignalRootErrorPaths(t *testing.T) {
	g := topomap.Ring(5)
	if _, err := topomap.SignalRoot(g, 0, true, 1, 1, topomap.Options{}); err == nil {
		t.Fatal("the root cannot signal itself")
	}
	if _, err := topomap.SignalRoot(g, 9, true, 1, 1, topomap.Options{}); err == nil {
		t.Fatal("node out of range must be rejected")
	}
}

func TestSignalRootBackToken(t *testing.T) {
	g := topomap.BiRing(7)
	res, err := topomap.SignalRoot(g, 3, false, 0, 0, topomap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forward {
		t.Fatal("expected a BACK token")
	}
	if len(res.PathToRoot) != g.Distance(3, 0) || len(res.PathFromRoot) != g.Distance(0, 3) {
		t.Fatalf("path lengths %d/%d, want %d/%d", len(res.PathToRoot),
			len(res.PathFromRoot), g.Distance(3, 0), g.Distance(0, 3))
	}
}

func TestGraphSerializationThroughAPI(t *testing.T) {
	g := topomap.Kautz(2, 2)
	s := g.MarshalString()
	h, err := topomap.UnmarshalGraphString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("serialisation round-trip failed")
	}
	if !strings.HasPrefix(s, "topomap-graph v1") {
		t.Fatal("format header missing")
	}
}

func TestResultStatsPlausible(t *testing.T) {
	g := topomap.BiRing(9)
	res, err := topomap.Map(g, topomap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge is reported by exactly one FORWARD transaction; BACKs
	// add at most one transaction per edge.
	if res.Transactions < g.NumEdges() || res.Transactions > 2*g.NumEdges() {
		t.Fatalf("transactions %d outside [E, 2E] = [%d, %d]",
			res.Transactions, g.NumEdges(), 2*g.NumEdges())
	}
	if res.Messages <= int64(res.Ticks) {
		t.Fatalf("message count %d implausible for %d ticks", res.Messages, res.Ticks)
	}
}
