package topomap_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"topomap"
)

func TestMapErrorPaths(t *testing.T) {
	g := topomap.NewGraph(3, 2)
	g.MustConnect(0, 1, 1, 1)
	g.MustConnect(1, 1, 0, 1)
	// Node 2 unwired: invalid network.
	if _, err := topomap.Map(g, topomap.Options{}); err == nil {
		t.Fatal("invalid network must be rejected")
	}
	valid := topomap.Ring(4)
	if _, err := topomap.Map(valid, topomap.Options{Root: -1}); err == nil {
		t.Fatal("negative root must be rejected")
	}
	if _, err := topomap.Map(valid, topomap.Options{Root: 4}); err == nil {
		t.Fatal("root beyond N must be rejected")
	}
	if _, err := topomap.Map(valid, topomap.Options{MaxTicks: 3}); err == nil {
		t.Fatal("a 3-tick budget cannot complete the protocol")
	}
}

func TestMapAllFamilies(t *testing.T) {
	for _, fam := range topomap.AllFamilies() {
		g, err := topomap.Build(fam, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		res, err := topomap.Map(g, topomap.Options{Validate: true})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !topomap.Verify(g, 0, res.Topology) {
			t.Errorf("%s: inexact map", fam)
		}
	}
}

// TestMapWorkersDeterminism is the public face of the engine's determinism
// guarantee: Map with any Workers value returns the identical
// reconstruction, tick count, message count, and transaction count.
func TestMapWorkersDeterminism(t *testing.T) {
	g := topomap.Torus(5, 6)
	base, err := topomap.Map(g, topomap.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		res, err := topomap.Map(g, topomap.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Ticks != base.Ticks || res.Messages != base.Messages || res.Transactions != base.Transactions {
			t.Fatalf("workers=%d diverged: (%d,%d,%d) vs sequential (%d,%d,%d)",
				workers, res.Ticks, res.Messages, res.Transactions,
				base.Ticks, base.Messages, base.Transactions)
		}
		if !res.Topology.Equal(base.Topology) {
			t.Fatalf("workers=%d reconstructed a different topology", workers)
		}
	}
}

func TestMapCustomSpeedsStillExact(t *testing.T) {
	// Slowing UNMARK to speed-1 is a conservative change (more cleanup
	// slack); the protocol must still map exactly.
	g := topomap.Torus(3, 4)
	res, err := topomap.Map(g, topomap.Options{
		Speeds: &topomap.Speeds{Snake: 2, Loop: 2, Unmark: 2, Kill: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !topomap.Verify(g, 0, res.Topology) {
		t.Fatal("conservative speed change broke the map")
	}
}

func TestSendBackwardErrorPaths(t *testing.T) {
	g := topomap.Ring(5)
	if _, err := topomap.SendBackward(g, 0, 2, topomap.PayloadPing, topomap.Options{}); err == nil {
		t.Fatal("unwired in-port must be rejected")
	}
	if _, err := topomap.SendBackward(g, 7, 1, topomap.PayloadPing, topomap.Options{}); err == nil {
		t.Fatal("node out of range must be rejected")
	}
}

func TestSendBackwardEveryRingNode(t *testing.T) {
	g := topomap.Ring(6)
	for v := 0; v < g.N(); v++ {
		res, err := topomap.SendBackward(g, v, 1, topomap.PayloadPong, topomap.Options{})
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		want := (v + 5) % 6
		if res.Target != want {
			t.Fatalf("node %d: delivered to %d, want %d", v, res.Target, want)
		}
	}
}

func TestSignalRootErrorPaths(t *testing.T) {
	g := topomap.Ring(5)
	if _, err := topomap.SignalRoot(g, 0, true, 1, 1, topomap.Options{}); err == nil {
		t.Fatal("the root cannot signal itself")
	}
	if _, err := topomap.SignalRoot(g, 9, true, 1, 1, topomap.Options{}); err == nil {
		t.Fatal("node out of range must be rejected")
	}
}

func TestSignalRootBackToken(t *testing.T) {
	g := topomap.BiRing(7)
	res, err := topomap.SignalRoot(g, 3, false, 0, 0, topomap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forward {
		t.Fatal("expected a BACK token")
	}
	if len(res.PathToRoot) != g.Distance(3, 0) || len(res.PathFromRoot) != g.Distance(0, 3) {
		t.Fatalf("path lengths %d/%d, want %d/%d", len(res.PathToRoot),
			len(res.PathFromRoot), g.Distance(3, 0), g.Distance(0, 3))
	}
}

func TestGraphSerializationThroughAPI(t *testing.T) {
	g := topomap.Kautz(2, 2)
	s := g.MarshalString()
	h, err := topomap.UnmarshalGraphString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("serialisation round-trip failed")
	}
	if !strings.HasPrefix(s, "topomap-graph v1") {
		t.Fatal("format header missing")
	}
}

func TestResultStatsPlausible(t *testing.T) {
	g := topomap.BiRing(9)
	res, err := topomap.Map(g, topomap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge is reported by exactly one FORWARD transaction; BACKs
	// add at most one transaction per edge.
	if res.Transactions < g.NumEdges() || res.Transactions > 2*g.NumEdges() {
		t.Fatalf("transactions %d outside [E, 2E] = [%d, %d]",
			res.Transactions, g.NumEdges(), 2*g.NumEdges())
	}
	if res.Messages <= int64(res.Ticks) {
		t.Fatalf("message count %d implausible for %d ticks", res.Messages, res.Ticks)
	}
}

// TestSessionMatchesMap: a reused session must return results identical to
// one-shot Map across families (the public face of session equivalence).
func TestSessionMatchesMap(t *testing.T) {
	s := topomap.NewSession(topomap.Options{})
	defer s.Close()
	for _, fam := range topomap.AllFamilies() {
		g, err := topomap.Build(fam, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		fresh, err := topomap.Map(g, topomap.Options{})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		reused, err := s.Map(g)
		if err != nil {
			t.Fatalf("%s reused: %v", fam, err)
		}
		if reused.Ticks != fresh.Ticks || reused.Messages != fresh.Messages ||
			reused.Transactions != fresh.Transactions || !reused.Topology.Equal(fresh.Topology) {
			t.Fatalf("%s: session result diverges from Map", fam)
		}
	}
}

// TestSessionSteadyStateAllocs is the allocation regression test: second-
// and-later runs of a reused session must be near-zero-allocation — only
// the returned Result and reconstruction graph (a handful of allocations)
// may remain. A regression that reintroduces per-run or per-transaction
// allocation (engine buffers, automata, converters, transcript copies,
// signature keys) trips the bound immediately.
func TestSessionSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *topomap.Graph
	}{
		{"ring8", topomap.Ring(8)},
		{"kautz2.2", topomap.Kautz(2, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := topomap.NewSession(topomap.Options{Workers: 1})
			defer s.Close()
			if _, err := s.Map(tc.g); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := s.Map(tc.g); err != nil {
					t.Fatal(err)
				}
			})
			// 6 today: Result, RunResult, and the reconstruction
			// graph's four allocations. No slack — the memory-lean
			// engine keeps every per-run buffer (planes, scratch,
			// stamps, automata) recycled, and a single reintroduced
			// per-run allocation should fail loudly.
			if allocs > 6 {
				t.Fatalf("steady-state session run allocates too much: %.0f allocs/run", allocs)
			}
		})
	}
}

// TestMapBatchMatchesSequential: a batch at several pool sizes must return
// per-item results identical to sequential Map calls, in input order.
func TestMapBatchMatchesSequential(t *testing.T) {
	graphs := []*topomap.Graph{
		topomap.Ring(12),
		topomap.Torus(4, 5),
		topomap.Kautz(2, 2),
		topomap.BiRing(9),
		topomap.Ring(12), // duplicate input
		topomap.Hypercube(4),
	}
	want := make([]*topomap.Result, len(graphs))
	for i, g := range graphs {
		var err error
		want[i], err = topomap.Map(g, topomap.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, pool := range []int{1, 2, 4} {
		items, err := topomap.MapBatch(context.Background(), graphs,
			topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: pool})
		if err != nil {
			t.Fatalf("sessions=%d: %v", pool, err)
		}
		if len(items) != len(graphs) {
			t.Fatalf("sessions=%d: %d items for %d graphs", pool, len(items), len(graphs))
		}
		for i, it := range items {
			if it.Err != nil {
				t.Fatalf("sessions=%d item %d: %v", pool, i, it.Err)
			}
			if it.Result.Ticks != want[i].Ticks || it.Result.Messages != want[i].Messages ||
				!it.Result.Topology.Equal(want[i].Topology) {
				t.Fatalf("sessions=%d item %d diverges from sequential Map", pool, i)
			}
		}
	}
}

// TestMapBatchPerItemErrors: the default policy records failures per item
// and maps everything else.
func TestMapBatchPerItemErrors(t *testing.T) {
	bad := topomap.NewGraph(3, 2)
	bad.MustConnect(0, 1, 1, 1)
	bad.MustConnect(1, 1, 0, 1)
	graphs := []*topomap.Graph{topomap.Ring(8), bad, topomap.Kautz(2, 2)}
	items, err := topomap.MapBatch(context.Background(), graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: 2})
	if err != nil {
		t.Fatalf("per-item policy must not fail the batch: %v", err)
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("healthy graphs must map: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("invalid graph must carry a per-item error")
	}
	if !topomap.Verify(graphs[2], 0, items[2].Result.Topology) {
		t.Fatal("graph after the failure mapped inexactly")
	}
}

// TestMapBatchStopOnError: the first (lowest-index) error cancels the rest
// and is returned as the batch error.
func TestMapBatchStopOnError(t *testing.T) {
	bad := topomap.NewGraph(3, 2)
	bad.MustConnect(0, 1, 1, 1)
	bad.MustConnect(1, 1, 0, 1)
	graphs := []*topomap.Graph{bad, topomap.Ring(8), topomap.Kautz(2, 2)}
	items, err := topomap.MapBatch(context.Background(), graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: 1, StopOnError: true})
	if err == nil {
		t.Fatal("StopOnError batch must return the first error")
	}
	if items[0].Err == nil {
		t.Fatal("failing item must carry its error")
	}
	// With one session the remaining graphs are skipped after the cancel.
	for i := 1; i < len(items); i++ {
		if items[i].Result != nil && items[i].Err != nil {
			t.Fatalf("item %d has both result and error", i)
		}
	}
}

// TestMapBatchContextCancelled: a cancelled context aborts the batch, marks
// unfinished items, and returns the context error.
func TestMapBatchContextCancelled(t *testing.T) {
	graphs := make([]*topomap.Graph, 16)
	for i := range graphs {
		graphs[i] = topomap.Torus(4, 4)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := topomap.MapBatch(ctx, graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	for i, it := range items {
		if it.Err == nil {
			t.Fatalf("item %d must carry the cancellation error", i)
		}
	}
}

// TestMapBatchEmpty: an empty batch returns no items and no error.
func TestMapBatchEmpty(t *testing.T) {
	items, err := topomap.MapBatch(context.Background(), nil, topomap.BatchOptions{})
	if err != nil || len(items) != 0 {
		t.Fatalf("empty batch: items=%d err=%v", len(items), err)
	}
}

// TestMapBatchReleasesSessions: no goroutines (session pools or batch
// workers) survive a completed or cancelled batch.
func TestMapBatchReleasesSessions(t *testing.T) {
	graphs := []*topomap.Graph{topomap.Torus(4, 4), topomap.Torus(4, 4), topomap.Ring(16)}
	before := runtime.NumGoroutine()
	if _, err := topomap.MapBatch(context.Background(), graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 4}, Sessions: 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("batch leaked goroutines: %d before, %d after", before, got)
	}
}

// TestMapBatchSharedGraph: the same *Graph object may appear many times in
// a batch (and be validated concurrently by several sessions) — this is the
// regression test for the Validate-memoization data race, exercised under
// -race in CI.
func TestMapBatchSharedGraph(t *testing.T) {
	g := topomap.Torus(4, 4)
	graphs := make([]*topomap.Graph, 8)
	for i := range graphs {
		graphs[i] = g // one shared object, not copies
	}
	items, err := topomap.MapBatch(context.Background(), graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if it.Result.Ticks != items[0].Result.Ticks {
			t.Fatalf("item %d diverged on a shared graph", i)
		}
	}
}

// TestMapBatchStopOnErrorAttribution: the batch error must name the causal
// failure, not a lower-index run that was merely aborted by the resulting
// cancellation.
func TestMapBatchStopOnErrorAttribution(t *testing.T) {
	bad := topomap.NewGraph(3, 2)
	bad.MustConnect(0, 1, 1, 1)
	bad.MustConnect(1, 1, 0, 1)
	// Index 0 is a long-running valid graph; index 1 fails validation
	// immediately. With two sessions, the cancel from index 1 typically
	// lands while index 0 is still in flight — whatever the
	// interleaving, the reported error must be index 1's.
	graphs := []*topomap.Graph{topomap.Torus(5, 5), bad}
	_, err := topomap.MapBatch(context.Background(), graphs,
		topomap.BatchOptions{Options: topomap.Options{Workers: 1}, Sessions: 2, StopOnError: true})
	if err == nil {
		t.Fatal("StopOnError batch must return the causal error")
	}
	if !strings.Contains(err.Error(), "batch graph 1") {
		t.Fatalf("error must be attributed to the failing graph, got: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation artifact reported as the batch error: %v", err)
	}
}
