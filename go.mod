module topomap

go 1.24
