package topomap

import (
	"context"
	"fmt"

	"topomap/internal/graph"
	"topomap/internal/remap"
	"topomap/internal/service"
)

// Delta is a batched, ordered mutation of a network: edge inserts and
// deletes plus node additions and removals. Build one with its chaining
// methods and hand it to Session.Remap:
//
//	d := new(topomap.Delta).Insert(3, 2, 17, 2).Delete(5, 1, 6, 1)
//
// Node ids are reconstruction labels — the namespace of the Result the delta
// patches, where node 0 is the root. See DESIGN.md §2.9 for the delta model.
type Delta = graph.Delta

// ParseDelta parses the one-line delta text form, e.g.
// "patch +3:2>17:2 -5:1>6:1 n+ n-12".
var ParseDelta = graph.UnmarshalDeltaString

// Digest is a graph's canonical content address (Graph.CanonicalDigest):
// isomorphic anchored graphs share it. Service.Remap names its base
// reconstruction by Digest.
type Digest = graph.Digest

// RemapKind classifies how a Service.Remap produced its result:
// RemapIncremental (structural patch, no engine run) or RemapFull (the dirty
// set forced a full protocol run on the mutated graph).
type RemapKind = service.RemapKind

// Remap kinds.
const (
	RemapIncremental = service.RemapIncremental
	RemapFull        = service.RemapFull
)

// Service.Remap errors.
var (
	// ErrRemapNoCache reports a Remap on a service without a result cache.
	ErrRemapNoCache = service.ErrNoCache
	// ErrUnknownBase reports a Remap whose base digest is not (or no longer)
	// cached; the caller must fall back to submitting the full graph.
	ErrUnknownBase = service.ErrUnknownBase
)

// RemapOptions tunes Session.Remap.
type RemapOptions struct {
	// MaxDirtyFrac is the dirty fraction above which the incremental patch
	// is abandoned for a full protocol remap: a delta that invalidates more
	// than this fraction of the reconstruction's preorder labels re-runs
	// the protocol on the mutated graph instead. 0 selects the default
	// (0.25); 1 or more patches structurally no matter how dirty.
	MaxDirtyFrac float64
}

// RemapResult is the outcome of Session.Remap: a Result for the mutated
// network plus how it was produced. Incremental results ran no protocol, so
// their Ticks/Messages/Transactions are zero; fallback results carry real
// engine counters.
type RemapResult struct {
	Result
	// Incremental reports whether the structural patch served the remap
	// (false = full protocol fallback).
	Incremental bool
	// Dirty is the number of node labels the patch had to replay.
	Dirty int
}

// Remap revalidates and patches a prior reconstruction under a delta instead
// of re-running the protocol, falling back to a full remap when the delta
// invalidates too much (RemapOptions.MaxDirtyFrac). prev must be a Result
// (or RemapResult.Result) produced by this package; its Topology is not
// mutated. The returned reconstruction is bit-equal — same graph, same
// canonical digest — to what Map would return for the mutated network.
//
// The session memoizes the remap state of the last reconstruction it
// primed or patched, so chaining Remap calls (prev = the previous call's
// Result) stays in the fast path; remapping an arbitrary older Result works
// too and costs one state re-derivation.
func (s *Session) Remap(prev *Result, d *Delta, opts RemapOptions) (*RemapResult, error) {
	if prev == nil || prev.Topology == nil {
		return nil, fmt.Errorf("topomap: remap: nil prior result")
	}
	var st *remap.State
	if s.remapTopo == prev.Topology {
		st = s.remapState
	}
	res, err := s.inner.Remap(prev.Topology, st, d, remap.Options{MaxDirtyFrac: opts.MaxDirtyFrac})
	if err != nil {
		return nil, fmt.Errorf("topomap: %w", err)
	}
	s.remapTopo, s.remapState = res.Topology, res.State
	return &RemapResult{
		Result:      *newResult(&res.RunResult),
		Incremental: res.Incremental,
		Dirty:       res.Dirty,
	}, nil
}

// ServiceRemap is the outcome of Service.Remap: the post-delta cache entry
// plus how it was produced.
type ServiceRemap struct {
	// Cached is the post-delta entry, already resident in the service's
	// cache under Digest — a later Submit or Lookup of the mutated network
	// hits it with no remap at all.
	Cached *CachedResult
	// Digest is the post-delta reconstruction's content address, the base
	// for chaining further Remap calls.
	Digest Digest
	// Kind reports the serving path; Dirty is the number of labels the
	// patch replayed (the whole node count for RemapFull); Shared reports
	// that this call collapsed onto an identical remap already in flight.
	Kind   RemapKind
	Dirty  int
	Shared bool
}

// Remap patches a reconstruction the service has already cached, named by
// its content address (the canonical digest of the mapped graph anchored at
// its root), under a delta whose node ids live in that reconstruction's
// label space (node 0 = root). The result is bit-equal to mapping the
// mutated network from scratch; deltas within opts.MaxDirtyFrac never touch
// the engine, dirtier ones fall back to a full protocol run through the
// service's ordinary submit path. Concurrent identical remaps collapse onto
// one patch. ErrUnknownBase means the base was evicted or never mapped —
// submit the full graph instead. cmd/topomapd serves PATCH /map through
// this method.
func (s *Service) Remap(ctx context.Context, base Digest, d *Delta, opts RemapOptions) (*ServiceRemap, error) {
	out, err := s.pool.Remap(ctx, base, d, remap.Options{MaxDirtyFrac: opts.MaxDirtyFrac})
	if err != nil {
		return nil, fmt.Errorf("topomap: %w", err)
	}
	return &ServiceRemap{
		Cached: &CachedResult{ent: out.Ent},
		Digest: out.Digest,
		Kind:   out.Kind,
		Dirty:  out.Dirty,
		Shared: out.Shared,
	}, nil
}
